//! Local filesystem: a page cache in front of a block device.
//!
//! This is the ext4-on-SSD / tmpfs mount that DataNodes and shuffle stores
//! sit on. The write-back page cache is what makes the paper's Fig 8a
//! plateau: up to ~600 GB of aggregate intermediate data, "using SSD ...
//! achieves comparable performance as RAMDisk due to the caching effects
//! from the file system"; past the cache capacity, writes hit the device.
//!
//! Model summary:
//! * Writes that fit in free cache complete at memory speed and are flushed
//!   to the device in the background (one in-flight flush chunk at a time).
//! * Writes that do not fit go write-through, at device speed, competing
//!   with the flusher and any reads.
//! * Reads are served at memory speed for the resident fraction of a file
//!   and at device speed for the rest; files are evicted clean-first, LRU.

use crate::device::{Device, IoDone, Op};
use memres_des::ps::PsResource;
use memres_des::sim::Gen;
use memres_des::time::SimTime;
use memres_des::{Bytes, DetMap};
use std::collections::VecDeque;

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// Completed filesystem operation (user-visible).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FsDone {
    pub tag: u64,
    pub op: Op,
}

#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Page-cache capacity in bytes (Hyperion: tens of GB of the 64 GB DRAM).
    pub capacity: f64,
    /// Memory copy bandwidth for cache hits.
    pub mem_bw: f64,
    /// Flush chunk granularity.
    pub flush_chunk: f64,
}

impl CacheConfig {
    pub fn hyperion() -> Self {
        const GB: f64 = 1024.0 * 1024.0 * 1024.0;
        CacheConfig {
            capacity: 20.0 * GB,
            mem_bw: 3.0 * GB,
            flush_chunk: 64.0 * 1024.0 * 1024.0,
        }
    }
}

#[derive(Default)]
struct CachedFile {
    resident: f64,
    dirty: f64,
}

struct PageCache {
    cfg: CacheConfig,
    files: DetMap<FileId, CachedFile>,
    lru: VecDeque<FileId>,
    resident_total: f64,
    dirty_total: f64,
    /// FIFO of dirty segments awaiting flush.
    flush_queue: VecDeque<(FileId, f64)>,
    /// In-flight flush: (file, bytes) under the internal device tag.
    flush_inflight: Option<(FileId, f64)>,
}

impl PageCache {
    fn new(cfg: CacheConfig) -> Self {
        PageCache {
            cfg,
            files: DetMap::new(),
            lru: VecDeque::new(),
            resident_total: 0.0,
            dirty_total: 0.0,
            flush_queue: VecDeque::new(),
            flush_inflight: None,
        }
    }

    fn touch(&mut self, file: FileId) {
        if let Some(pos) = self.lru.iter().position(|&f| f == file) {
            self.lru.remove(pos);
        }
        self.lru.push_back(file);
    }

    /// Evict clean bytes (LRU) until `needed` bytes are free, best-effort.
    fn evict_for(&mut self, needed: f64) {
        let mut i = 0;
        while self.cfg.capacity - self.resident_total < needed && i < self.lru.len() {
            let file = self.lru[i];
            let f = self.files.get_mut(&file).expect("lru entry without file");
            let clean = (f.resident - f.dirty).max(0.0);
            let take = clean.min(needed - (self.cfg.capacity - self.resident_total));
            if take > 0.0 {
                f.resident -= take;
                self.resident_total -= take;
            }
            if f.resident <= 1e-6 && f.dirty <= 1e-6 {
                self.files.remove(&file);
                self.lru.remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn free(&self) -> f64 {
        self.cfg.capacity - self.resident_total
    }

    fn resident_of(&self, file: FileId) -> f64 {
        self.files.get(&file).map_or(0.0, |f| f.resident)
    }

    fn absorb_write(&mut self, file: FileId, bytes: f64) {
        let f = self.files.entry(file).or_default();
        f.resident += bytes;
        f.dirty += bytes;
        self.resident_total += bytes;
        self.dirty_total += bytes;
        self.flush_queue.push_back((file, bytes));
        self.touch(file);
    }

    fn drop_file(&mut self, file: FileId) {
        if let Some(f) = self.files.remove(&file) {
            self.resident_total -= f.resident;
            self.dirty_total -= f.dirty;
            if let Some(pos) = self.lru.iter().position(|&x| x == file) {
                self.lru.remove(pos);
            }
        }
        self.flush_queue.retain(|&(fid, _)| fid != file);
        // An in-flight flush for the file is left to finish harmlessly.
    }
}

enum SubOp {
    /// Whole user write that went write-through on the device.
    UserWrite { tag: u64 },
    /// Device part of a user read; may be joined with a mem part.
    UserReadPart { tag: u64 },
    /// Background flush chunk.
    Flush,
}

/// A local filesystem mount on one node.
pub struct LocalFs {
    device: Box<dyn Device>,
    cache: Option<PageCache>,
    /// Memory-speed channel for cache hits/absorbed writes.
    mem: PsResource<(u64, Op)>,
    capacity: f64,
    used: f64,
    files: DetMap<FileId, f64>,
    /// Device-tag -> suboperation bookkeeping.
    subs: DetMap<u64, SubOp>,
    next_sub: u64,
    /// user read tag -> outstanding part count.
    read_join: DetMap<u64, u8>,
    done: Vec<FsDone>,
    gen: Gen,
}

impl LocalFs {
    pub fn new(device: Box<dyn Device>, capacity: f64, cache: Option<CacheConfig>) -> Self {
        let mem_bw = cache.as_ref().map(|c| c.mem_bw).unwrap_or(1.0);
        LocalFs {
            device,
            cache: cache.map(PageCache::new),
            mem: PsResource::new(mem_bw),
            capacity,
            used: 0.0,
            files: DetMap::new(),
            subs: DetMap::new(),
            next_sub: 0,
            read_join: DetMap::new(),
            done: Vec::new(),
            gen: Gen::default(),
        }
    }

    pub fn used(&self) -> f64 {
        self.used
    }

    pub fn free(&self) -> f64 {
        self.capacity - self.used
    }

    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    pub fn file_size(&self, file: FileId) -> Option<f64> {
        self.files.get(&file).copied()
    }

    pub fn device(&self) -> &dyn Device {
        self.device.as_ref()
    }

    /// In-flight request count at the device (congestion signal for CAD).
    pub fn device_queue_depth(&self) -> usize {
        self.device.queue_depth()
    }

    fn sub_tag(&mut self, op: SubOp) -> u64 {
        let t = self.next_sub;
        self.next_sub += 1;
        self.subs.insert(t, op);
        t
    }

    /// Append `bytes` to `file`. Completion arrives via [`LocalFs::poll`].
    ///
    /// Capacity is enforced: writes beyond capacity panic, because callers
    /// (HDFS placement, shuffle store) are expected to check `free()` first —
    /// matching the paper's observation that RAMDisk-backed HDFS simply
    /// cannot host more than ~1.2 TB of intermediate data.
    pub fn write(&mut self, now: SimTime, file: FileId, bytes: Bytes, tag: u64) {
        let bytes = bytes.get();
        assert!(bytes >= 0.0);
        assert!(
            self.used + bytes <= self.capacity * (1.0 + 1e-9),
            "LocalFs over capacity: used={} + {} > {}",
            self.used,
            bytes,
            self.capacity
        );
        self.used += bytes;
        *self.files.entry(file).or_insert(0.0) += bytes;
        self.gen.bump();
        match &mut self.cache {
            Some(cache) => {
                cache.evict_for(bytes);
                if cache.free() >= bytes {
                    cache.absorb_write(file, bytes);
                    self.mem.add(now, bytes, (tag, Op::Write));
                    self.kick_flusher(now);
                } else {
                    // Write-through under cache pressure.
                    let st = self.sub_tag(SubOp::UserWrite { tag });
                    self.device.submit(now, Op::Write, bytes, st);
                }
            }
            None => {
                let st = self.sub_tag(SubOp::UserWrite { tag });
                self.device.submit(now, Op::Write, bytes, st);
            }
        }
    }

    /// Read `bytes` of `file` (must exist with at least that many bytes).
    pub fn read(&mut self, now: SimTime, file: FileId, bytes: Bytes, tag: u64) {
        let bytes = bytes.get();
        assert!(bytes >= 0.0);
        let size = self.files.get(&file).copied().unwrap_or(0.0);
        assert!(
            bytes <= size * (1.0 + 1e-9) + 1.0,
            "read past EOF: {bytes} of {size} in {file:?}"
        );
        self.gen.bump();
        let hit = match &mut self.cache {
            Some(cache) => {
                let h = cache.resident_of(file).min(bytes);
                cache.touch(file);
                h
            }
            None => 0.0,
        };
        let miss = bytes - hit;
        let mut parts = 0u8;
        if hit > 0.0 || miss == 0.0 {
            self.mem.add(now, hit, (tag, Op::Read));
            parts += 1;
        }
        if miss > 0.0 {
            let st = self.sub_tag(SubOp::UserReadPart { tag });
            self.device.submit(now, Op::Read, miss, st);
            parts += 1;
        }
        self.read_join.insert(tag, parts);
    }

    /// Register a pre-existing file instantly (no simulated I/O): used to
    /// lay out input datasets before a run. Not cache-resident.
    pub fn preload(&mut self, file: FileId, bytes: Bytes) {
        let bytes = bytes.get();
        assert!(bytes >= 0.0);
        assert!(
            self.used + bytes <= self.capacity * (1.0 + 1e-9),
            "preload over capacity"
        );
        self.used += bytes;
        *self.files.entry(file).or_insert(0.0) += bytes;
    }

    /// Remove a file, freeing space and cache residency instantly.
    pub fn delete(&mut self, file: FileId) {
        if let Some(size) = self.files.remove(&file) {
            self.used -= size;
            if let Some(cache) = &mut self.cache {
                cache.drop_file(file);
            }
            self.gen.bump();
        }
    }

    /// Drop the last `bytes` of `file` — the abandoned output of a failed
    /// writer. Frees capacity; any cache residency beyond the new size is a
    /// small, harmless overstatement (pages of the dropped tail linger until
    /// evicted).
    pub fn truncate(&mut self, file: FileId, bytes: Bytes) {
        let bytes = bytes.get();
        if let Some(size) = self.files.get_mut(&file) {
            let take = bytes.min(*size);
            *size -= take;
            self.used -= take;
            if *size <= 1e-6 {
                self.files.remove(&file);
                if let Some(cache) = &mut self.cache {
                    cache.drop_file(file);
                }
            }
            self.gen.bump();
        }
    }

    /// Attach a trace sink to the backing device, stamping its events with
    /// `node` (no-op for devices without traceable internal transitions).
    pub fn set_tracer(&mut self, node: u32, sink: memres_trace::SharedSink) {
        self.device.set_tracer(node, sink);
    }

    /// Fault-injection hook: permanently scale the backing device's
    /// bandwidth by `factor` (see [`Device::degrade`]).
    pub fn degrade_device(&mut self, now: SimTime, factor: f64) {
        self.device.degrade(now, factor);
        self.gen.bump();
    }

    fn kick_flusher(&mut self, now: SimTime) {
        let Some(cache) = &mut self.cache else { return };
        if cache.flush_inflight.is_some() {
            return;
        }
        // Coalesce queued dirty segments up to the flush chunk size.
        let mut chunk = 0.0;
        let mut file = None;
        while chunk < cache.cfg.flush_chunk {
            let Some(&(f, b)) = cache.flush_queue.front() else {
                break;
            };
            if file.is_some() && file != Some(f) {
                break;
            }
            file = Some(f);
            let room = cache.cfg.flush_chunk - chunk;
            if b <= room {
                chunk += b;
                cache.flush_queue.pop_front();
            } else {
                chunk += room;
                cache.flush_queue.front_mut().unwrap().1 -= room;
            }
        }
        if let Some(f) = file {
            cache.flush_inflight = Some((f, chunk));
            let st = self.sub_tag(SubOp::Flush);
            self.device.submit(now, Op::Write, chunk, st);
        }
    }

    /// Advance to `now`, returning completed user operations.
    pub fn poll(&mut self, now: SimTime) -> Vec<FsDone> {
        // Memory-speed completions.
        for (_, (tag, op)) in self.mem.poll(now) {
            match op {
                Op::Write => self.done.push(FsDone { tag, op: Op::Write }),
                Op::Read => self.finish_read_part(tag),
            }
        }
        // Device completions.
        let io: Vec<IoDone> = self.device.poll(now);
        for d in io {
            match self.subs.remove(&d.tag) {
                Some(SubOp::UserWrite { tag }) => self.done.push(FsDone { tag, op: Op::Write }),
                Some(SubOp::UserReadPart { tag }) => self.finish_read_part(tag),
                Some(SubOp::Flush) => {
                    if let Some(cache) = &mut self.cache {
                        if let Some((file, bytes)) = cache.flush_inflight.take() {
                            cache.dirty_total = (cache.dirty_total - bytes).max(0.0);
                            if let Some(f) = cache.files.get_mut(&file) {
                                f.dirty = (f.dirty - bytes).max(0.0);
                            }
                        }
                    }
                    self.kick_flusher(now);
                }
                None => panic!("device completion for unknown sub-op {}", d.tag),
            }
        }
        if !self.done.is_empty() {
            self.gen.bump();
        }
        std::mem::take(&mut self.done)
    }

    fn finish_read_part(&mut self, tag: u64) {
        let remaining = self.read_join.get_mut(&tag).expect("read join missing");
        *remaining -= 1;
        if *remaining == 0 {
            self.read_join.remove(&tag);
            self.done.push(FsDone { tag, op: Op::Read });
        }
    }

    pub fn next_event(&self) -> Option<SimTime> {
        let a = self.mem.next_completion();
        let b = self.device.next_event();
        match (a, b) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        }
    }

    pub fn gen(&self) -> Gen {
        self.gen
    }

    /// Cache-resident bytes of a file (test/diagnostic hook).
    pub fn cached_bytes(&self, file: FileId) -> f64 {
        self.cache.as_ref().map_or(0.0, |c| c.resident_of(file))
    }

    pub fn dirty_bytes(&self) -> f64 {
        self.cache.as_ref().map_or(0.0, |c| c.dirty_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::RamDisk;
    use crate::ssd::{Ssd, SsdConfig};

    fn run_until_tag(fs: &mut LocalFs, want: u64) -> SimTime {
        loop {
            let t = fs.next_event().expect("fs went idle before completion");
            if fs.poll(t).iter().any(|d| d.tag == want) {
                return t;
            }
        }
    }

    fn ssd_fs(cache: Option<CacheConfig>) -> LocalFs {
        LocalFs::new(Box::new(Ssd::new(SsdConfig::test_small())), 1e9, cache)
    }

    fn small_cache() -> CacheConfig {
        CacheConfig {
            capacity: 100.0,
            mem_bw: 10_000.0,
            flush_chunk: 25.0,
        }
    }

    #[test]
    fn cached_write_is_memory_speed() {
        let mut fs = ssd_fs(Some(small_cache()));
        fs.write(SimTime::ZERO, FileId(1), Bytes(50.0), 1);
        let t = run_until_tag(&mut fs, 1);
        // 50 bytes at mem_bw 10_000/s: ~5ms, far faster than device 100/s.
        assert!(t.as_secs_f64() < 0.05, "took {t}");
        assert_eq!(fs.used(), 50.0);
    }

    #[test]
    fn overflow_write_hits_device() {
        let mut fs = ssd_fs(Some(small_cache()));
        // Fill the cache with dirty data (cannot be evicted until flushed).
        fs.write(SimTime::ZERO, FileId(1), Bytes(100.0), 1);
        fs.write(SimTime::ZERO, FileId(2), Bytes(100.0), 2);
        let t = run_until_tag(&mut fs, 2);
        // The second write must go through the device (100 bytes competing
        // with the flusher at ~100-400/s): decidedly slower than memory speed.
        assert!(t.as_secs_f64() > 0.2, "took {t}");
    }

    #[test]
    fn read_of_cached_file_is_fast() {
        let mut fs = ssd_fs(Some(small_cache()));
        fs.write(SimTime::ZERO, FileId(1), Bytes(50.0), 1);
        let t1 = run_until_tag(&mut fs, 1);
        fs.read(t1, FileId(1), Bytes(50.0), 2);
        let t2 = run_until_tag(&mut fs, 2);
        assert!(
            t2.since(t1).as_secs_f64() < 0.05,
            "read took {}",
            t2.since(t1)
        );
    }

    #[test]
    fn read_of_evicted_file_hits_device() {
        let mut fs = LocalFs::new(
            Box::new(RamDisk::new(100.0, 100.0)),
            1e9,
            Some(small_cache()),
        );
        fs.write(SimTime::ZERO, FileId(1), Bytes(80.0), 1);
        let t1 = run_until_tag(&mut fs, 1);
        // Let the flusher clean file 1, then write file 2 to evict it.
        let mut now = t1;
        while fs.dirty_bytes() > 0.0 {
            let t = fs.next_event().unwrap();
            fs.poll(t);
            now = t;
        }
        fs.write(now, FileId(2), Bytes(90.0), 2);
        let t2 = run_until_tag(&mut fs, 2);
        assert!(
            fs.cached_bytes(FileId(1)) < 80.0,
            "file1 should be (partly) evicted"
        );
        fs.read(t2, FileId(1), Bytes(80.0), 3);
        let t3 = run_until_tag(&mut fs, 3);
        // Mostly device speed (100 B/s): takes ~0.7s+.
        assert!(
            t3.since(t2).as_secs_f64() > 0.5,
            "read took {}",
            t3.since(t2)
        );
    }

    #[test]
    fn no_cache_means_device_speed_writes() {
        let mut fs = LocalFs::new(Box::new(RamDisk::new(100.0, 100.0)), 1e9, None);
        fs.write(SimTime::ZERO, FileId(1), Bytes(100.0), 7);
        let t = run_until_tag(&mut fs, 7);
        assert!((t.as_secs_f64() - 1.0).abs() < 0.01);
    }

    #[test]
    fn delete_frees_space() {
        let mut fs = LocalFs::new(Box::new(RamDisk::new(100.0, 100.0)), 150.0, None);
        fs.write(SimTime::ZERO, FileId(1), Bytes(100.0), 1);
        run_until_tag(&mut fs, 1);
        assert_eq!(fs.free(), 50.0);
        fs.delete(FileId(1));
        assert_eq!(fs.free(), 150.0);
        assert_eq!(fs.file_size(FileId(1)), None);
    }

    #[test]
    #[should_panic(expected = "over capacity")]
    fn capacity_is_enforced() {
        let mut fs = LocalFs::new(Box::new(RamDisk::new(100.0, 100.0)), 10.0, None);
        fs.write(SimTime::ZERO, FileId(1), Bytes(11.0), 1);
    }

    #[test]
    fn flusher_drains_dirty_data() {
        let mut fs = ssd_fs(Some(small_cache()));
        fs.write(SimTime::ZERO, FileId(1), Bytes(100.0), 1);
        run_until_tag(&mut fs, 1);
        assert!(fs.dirty_bytes() > 0.0);
        while let Some(t) = fs.next_event() {
            fs.poll(t);
            if fs.dirty_bytes() == 0.0 {
                break;
            }
        }
        assert_eq!(fs.dirty_bytes(), 0.0);
    }

    #[test]
    fn truncate_frees_partial_capacity() {
        let mut fs = LocalFs::new(Box::new(RamDisk::new(100.0, 100.0)), 150.0, None);
        fs.write(SimTime::ZERO, FileId(1), Bytes(100.0), 1);
        run_until_tag(&mut fs, 1);
        fs.truncate(FileId(1), Bytes(30.0));
        assert_eq!(fs.free(), 80.0);
        assert_eq!(fs.file_size(FileId(1)), Some(70.0));
        // Truncating everything removes the file.
        fs.truncate(FileId(1), Bytes(1e9));
        assert_eq!(fs.free(), 150.0);
        assert_eq!(fs.file_size(FileId(1)), None);
        // Truncating a missing file is a no-op.
        fs.truncate(FileId(9), Bytes(10.0));
        assert_eq!(fs.free(), 150.0);
    }

    #[test]
    fn degrade_device_slows_uncached_writes() {
        let mut fs = LocalFs::new(Box::new(Ssd::new(SsdConfig::test_small())), 1e9, None);
        fs.degrade_device(SimTime::ZERO, 0.25);
        // 40 bytes at a quarter of the 400/s accept rate: ~0.4 s.
        fs.write(SimTime::ZERO, FileId(1), Bytes(40.0), 1);
        let t = run_until_tag(&mut fs, 1);
        assert!(t.as_secs_f64() > 0.3, "took {t}");
    }

    #[test]
    fn zero_byte_read_completes() {
        let mut fs = LocalFs::new(Box::new(RamDisk::new(100.0, 100.0)), 1e9, None);
        fs.write(SimTime::ZERO, FileId(1), Bytes(10.0), 1);
        run_until_tag(&mut fs, 1);
        fs.read(SimTime::from_secs_f64(1.0), FileId(1), Bytes(0.0), 2);
        run_until_tag(&mut fs, 2);
    }
}
