//! The event calendar: a time-ordered priority queue with FIFO tie-breaking.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Time-ordered event queue. Events scheduled at the same instant pop in
/// insertion order, which keeps simulations deterministic.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), ());
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popped times are a non-decreasing sequence, and every pushed
        /// element comes back exactly once.
        #[test]
        fn total_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime(t), i);
            }
            let mut last = SimTime(0);
            let mut seen = vec![false; times.len()];
            while let Some((t, idx)) = q.pop() {
                prop_assert!(t >= last);
                prop_assert_eq!(t, SimTime(times[idx]));
                prop_assert!(!seen[idx]);
                seen[idx] = true;
                last = t;
            }
            prop_assert!(seen.into_iter().all(|s| s));
        }
    }
}
