//! The event calendar: a time-ordered priority queue with FIFO tie-breaking.
//!
//! Two interchangeable implementations sit behind [`EventQueue`]:
//!
//! * **Calendar** (default) — a bucketed calendar queue: fixed-width time
//!   buckets spanning one "year" of `nbuckets` slots, each bucket an
//!   ascending `(time, seq)` run popped from the front, with a sorted
//!   overflow tier (binary heap) for events beyond the current year. The
//!   structure resizes itself on load factor and re-estimates its bucket
//!   width from the inter-quartile spread of buffered event times, so both
//!   dense same-instant storms and sparse far-future timers stay O(1)-ish.
//! * **Heap** (legacy) — the original `BinaryHeap`, kept for baseline
//!   benchmarking (`EngineConfig::legacy_event_queue`) and as the oracle the
//!   calendar is differentially tested against.
//!
//! Both pop in exactly ascending `(time, seq)` order; events scheduled at
//! the same instant pop in insertion order, which keeps simulations
//! deterministic. The two implementations are pop-for-pop identical.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Smallest and largest bucket counts the calendar will resize between.
const MIN_BUCKETS: usize = 64;
const MAX_BUCKETS: usize = 1 << 20;

/// The bucketed calendar tier. Invariants:
///
/// * every buffered entry has `slot(time) >= base_slot`;
/// * entries with `slot(time) < year_limit` live in `buckets[slot & mask]`,
///   the rest in `overflow`;
/// * `year_limit - base-of-year == nbuckets`, so each bucket holds at most
///   one distinct slot and its deque is ascending in `(time, seq)`.
struct Calendar<E> {
    buckets: Vec<VecDeque<Entry<E>>>,
    mask: u64,
    /// Nanoseconds per slot (>= 1).
    width: u64,
    /// Cursor: no buffered entry is earlier than this slot.
    base_slot: u64,
    /// First slot beyond the current year; fixed until the year drains.
    year_limit: u64,
    /// Entries currently in `buckets` (the rest are in `overflow`).
    in_year: usize,
    overflow: BinaryHeap<Entry<E>>,
    len: usize,
}

impl<E> Calendar<E> {
    fn new() -> Self {
        Calendar {
            buckets: (0..MIN_BUCKETS).map(|_| VecDeque::new()).collect(),
            mask: (MIN_BUCKETS - 1) as u64,
            width: 1 << 10,
            base_slot: 0,
            year_limit: MIN_BUCKETS as u64,
            in_year: 0,
            overflow: BinaryHeap::new(),
            len: 0,
        }
    }

    #[inline]
    fn slot_of(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.width
    }

    fn push(&mut self, entry: Entry<E>) {
        let s = self.slot_of(entry.time);
        if self.len == 0 {
            // Re-anchor an empty calendar on the incoming event: cheap, and
            // it makes backward time jumps after a full drain free.
            self.base_slot = s;
            self.year_limit = s + self.buckets.len() as u64;
        }
        self.len += 1;
        if s < self.base_slot {
            // An event earlier than the cursor (never produced by the
            // simulation loop, which clamps to `now`, but the queue contract
            // allows it). Re-anchor and redistribute everything.
            self.insert(entry);
            self.rebuild(self.buckets.len());
            return;
        }
        self.insert(entry);
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.rebuild(self.buckets.len() * 2);
        }
    }

    /// Place one entry in its tier. Requires `len` already counted.
    fn insert(&mut self, entry: Entry<E>) {
        let s = self.slot_of(entry.time);
        if s < self.base_slot || s >= self.year_limit {
            self.overflow.push(entry);
            return;
        }
        let b = &mut self.buckets[(s & self.mask) as usize];
        let key = (entry.time, entry.seq);
        // Monotone (time, seq) pushes — the common case — land at the back.
        if b.back().is_none_or(|e| (e.time, e.seq) < key) {
            b.push_back(entry);
        } else {
            let at = b.partition_point(|e| (e.time, e.seq) < key);
            b.insert(at, entry);
        }
        self.in_year += 1;
    }

    fn pop(&mut self) -> Option<Entry<E>> {
        if self.len == 0 {
            return None;
        }
        if self.in_year == 0 {
            self.start_year_at_overflow_min();
        }
        loop {
            let b = &mut self.buckets[(self.base_slot & self.mask) as usize];
            if let Some(e) = b.pop_front() {
                self.in_year -= 1;
                self.len -= 1;
                if self.len * 8 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
                    // Popping never reorders, so rebuilding after the pop is
                    // safe; it also re-estimates the width for the survivors.
                    self.rebuild(self.buckets.len() / 2);
                }
                return Some(e);
            }
            // Empty bucket: advance the cursor. `in_year > 0` guarantees a
            // nonempty bucket strictly before `year_limit`.
            self.base_slot += 1;
            debug_assert!(self.base_slot < self.year_limit, "year lost entries");
        }
    }

    fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        if self.in_year == 0 {
            return self.overflow.peek().map(|e| e.time);
        }
        let mut s = self.base_slot;
        while s < self.year_limit {
            if let Some(e) = self.buckets[(s & self.mask) as usize].front() {
                return Some(e.time);
            }
            s += 1;
        }
        unreachable!("in_year > 0 but no bucket holds an entry");
    }

    /// All buckets drained: begin a new year at the earliest overflow event
    /// and migrate everything that falls inside it.
    fn start_year_at_overflow_min(&mut self) {
        let first = self
            .overflow
            .peek()
            .map(|e| self.slot_of(e.time))
            .expect("len > 0 with empty buckets implies overflow entries");
        self.base_slot = first;
        self.year_limit = first + self.buckets.len() as u64;
        while let Some(e) = self.overflow.peek() {
            if self.slot_of(e.time) >= self.year_limit {
                break;
            }
            let e = self.overflow.pop().expect("peeked entry exists");
            // Heap pops ascend in (time, seq), so these land at bucket backs.
            self.insert(e);
        }
    }

    /// Redistribute everything across `new_nbuckets` buckets, re-anchoring
    /// the cursor at the earliest entry and re-estimating the slot width
    /// from the inter-quartile spread of buffered times.
    fn rebuild(&mut self, new_nbuckets: usize) {
        let mut all: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            all.extend(b.drain(..));
        }
        all.extend(std::mem::take(&mut self.overflow).into_vec());
        all.sort_unstable_by_key(|e| (e.time, e.seq));

        let n = new_nbuckets.clamp(MIN_BUCKETS, MAX_BUCKETS);
        if self.buckets.len() != n {
            self.buckets = (0..n).map(|_| VecDeque::new()).collect();
            self.mask = (n - 1) as u64;
        }
        self.width = estimate_width(&all);
        self.in_year = 0;
        self.base_slot = all.first().map_or(0, |e| self.slot_of(e.time));
        self.year_limit = self.base_slot + n as u64;
        for e in all {
            // Sorted order: in-bucket inserts are all back-pushes.
            self.insert(e);
        }
    }
}

/// Fallback slot width when the buffered times carry no usable spread:
/// fewer than four samples, or an inter-quartile span of ~0 (a same-instant
/// event storm). Matches the width a fresh calendar starts with.
const DEFAULT_WIDTH: u64 = 1 << 10;

/// Slot width from the inter-quartile time spread: the central half of the
/// events should occupy about half the buckets, leaving the rest of the year
/// for the tails. Far-future sentinels (e.g. `SimTime::FAR_FUTURE` timers)
/// sit outside the quartiles and fall to the overflow tier instead of
/// stretching the width.
///
/// When the quartiles coincide (all times clustered in one instant — common
/// right after a shrink rebuild from a near-empty queue), the spread carries
/// no information; `span / k` would pin the width to 1 ns and every later
/// push lands years ahead of the cursor, forcing worst-case bucket scans and
/// overflow churn until the next rebuild. Fall back to the default width
/// instead — the width only affects scan cost, never pop order, so the
/// clamp is behavior-neutral (see the `calendar_matches_heap` proptest).
fn estimate_width<E>(sorted: &[Entry<E>]) -> u64 {
    let n = sorted.len();
    if n < 4 {
        return DEFAULT_WIDTH;
    }
    let q1 = sorted[n / 4].time.as_nanos();
    let q3 = sorted[(3 * n) / 4].time.as_nanos();
    let span = q3.saturating_sub(q1);
    if span == 0 {
        return DEFAULT_WIDTH;
    }
    (span / (n as u64 / 2).max(1)).max(1)
}

enum Imp<E> {
    Calendar(Calendar<E>),
    Heap(BinaryHeap<Entry<E>>),
}

/// Time-ordered event queue. Events scheduled at the same instant pop in
/// insertion order, which keeps simulations deterministic.
pub struct EventQueue<E> {
    imp: Imp<E>,
    seq: u64,
    len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// The default calendar-queue implementation.
    pub fn new() -> Self {
        EventQueue {
            imp: Imp::Calendar(Calendar::new()),
            seq: 0,
            len: 0,
        }
    }

    /// The legacy `BinaryHeap` implementation: the baseline for perf
    /// comparisons and the oracle for differential tests. Pop order is
    /// identical to [`EventQueue::new`].
    pub fn heap() -> Self {
        EventQueue {
            imp: Imp::Heap(BinaryHeap::new()),
            seq: 0,
            len: 0,
        }
    }

    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let entry = Entry { time, seq, event };
        match &mut self.imp {
            Imp::Calendar(c) => c.push(entry),
            Imp::Heap(h) => h.push(entry),
        }
    }

    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = match &mut self.imp {
            Imp::Calendar(c) => c.pop(),
            Imp::Heap(h) => h.pop(),
        }?;
        self.len -= 1;
        Some((e.time, e.event))
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.imp {
            Imp::Calendar(c) => c.peek_time(),
            Imp::Heap(h) => h.peek().map(|e| e.time),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Calendar health for engine self-stats (DESIGN.md §4.16). The legacy
    /// heap reports zero buckets and everything in the overflow tier.
    pub fn stats(&self) -> QueueStats {
        match &self.imp {
            Imp::Calendar(c) => QueueStats {
                buckets: c.buckets.len(),
                width_nanos: c.width,
                in_year: c.in_year,
                overflow: c.overflow.len(),
            },
            Imp::Heap(h) => QueueStats {
                buckets: 0,
                width_nanos: 0,
                in_year: 0,
                overflow: h.len(),
            },
        }
    }
}

/// Calendar-queue health snapshot: bucket count, slot width, and how the
/// buffered events split between the in-year buckets and the overflow heap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    pub buckets: usize,
    pub width_nanos: u64,
    pub in_year: usize,
    pub overflow: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [EventQueue<&'static str>; 2] {
        [EventQueue::new(), EventQueue::heap()]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both() {
            q.push(SimTime(30), "c");
            q.push(SimTime(10), "a");
            q.push(SimTime(20), "b");
            assert_eq!(q.pop(), Some((SimTime(10), "a")));
            assert_eq!(q.pop(), Some((SimTime(20), "b")));
            assert_eq!(q.pop(), Some((SimTime(30), "c")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn fifo_among_equal_times() {
        for imp in [EventQueue::new, EventQueue::heap] {
            let mut q = imp();
            for i in 0..100 {
                q.push(SimTime(5), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((SimTime(5), i)));
            }
        }
    }

    #[test]
    fn peek_matches_pop() {
        for imp in [EventQueue::new, EventQueue::heap] {
            let mut q = imp();
            q.push(SimTime(7), ());
            assert_eq!(q.peek_time(), Some(SimTime(7)));
            assert_eq!(q.len(), 1);
            q.pop();
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
        }
    }

    #[test]
    fn far_future_sentinels_stay_in_overflow() {
        let mut q = EventQueue::new();
        q.push(SimTime::FAR_FUTURE, u32::MAX);
        for i in 0..1000u32 {
            q.push(SimTime(i as u64 * 1_000_000), i);
        }
        for i in 0..1000u32 {
            assert_eq!(q.pop(), Some((SimTime(i as u64 * 1_000_000), i)));
        }
        assert_eq!(q.pop(), Some((SimTime::FAR_FUTURE, u32::MAX)));
    }

    #[test]
    fn grows_and_shrinks_through_load() {
        let mut q = EventQueue::new();
        // Enough events to force several calendar rebuilds both ways.
        for i in 0..50_000u64 {
            q.push(SimTime(i * 7919 % 65_536), i);
        }
        let mut last = (SimTime(0), 0u64);
        let mut n = 0;
        while let Some((t, v)) = q.pop() {
            assert!((t, v) >= last || t > last.0, "order break at {n}");
            last = (t, v);
            n += 1;
        }
        assert_eq!(n, 50_000);
    }

    #[test]
    fn clustered_times_fall_back_to_default_width() {
        // All samples in one instant: the inter-quartile span is 0 and the
        // estimator must return the default width, not degenerate to 1 ns.
        let entries: Vec<Entry<u32>> = (0..64)
            .map(|i| Entry {
                time: SimTime(5_000),
                seq: i,
                event: 0,
            })
            .collect();
        assert_eq!(estimate_width(&entries), DEFAULT_WIDTH);
        // A genuine spread still estimates from the quartiles.
        let spread: Vec<Entry<u32>> = (0..64)
            .map(|i| Entry {
                time: SimTime(i * 1_000_000),
                seq: i,
                event: 0,
            })
            .collect();
        let w = estimate_width(&spread);
        assert!(w > 1, "spread times should not pin the width to 1");
        assert_ne!(w, DEFAULT_WIDTH, "estimator should use the real spread");
    }

    #[test]
    fn shrink_on_clustered_survivors_then_grow_stays_ordered() {
        // Fill well past a grow rebuild, then drain until the shrink rebuild
        // fires with only same-instant survivors — the case that used to
        // re-estimate width = 1. Then grow again with spread times and check
        // the queue still pops in exact (time, seq) order against the heap.
        let mut cal = EventQueue::new();
        let mut heap = EventQueue::heap();
        for i in 0..4_096u64 {
            // Most events early and spread; a cluster of late stragglers.
            let t = if i % 16 == 0 { 9_999_999 } else { i * 631 };
            cal.push(SimTime(t), i);
            heap.push(SimTime(t), i);
        }
        // Drain down to the same-instant cluster: forces shrink rebuilds
        // whose survivors all share t = 9_999_999.
        for _ in 0..3_840 {
            assert_eq!(cal.pop(), heap.pop());
        }
        // Grow again from the degenerate state with spread times.
        for i in 0..4_096u64 {
            let t = 10_000_000 + i * 977;
            cal.push(SimTime(t), 100_000 + i);
            heap.push(SimTime(t), 100_000 + i);
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b);
            if b.is_none() {
                break;
            }
        }
    }

    #[test]
    fn backward_push_after_pops_still_orders() {
        let mut q = EventQueue::new();
        for i in 0..100u64 {
            q.push(SimTime(1_000_000 + i), i);
        }
        for _ in 0..50 {
            q.pop();
        }
        // Earlier than everything popped so far (legal per the contract).
        q.push(SimTime(3), 999);
        assert_eq!(q.pop(), Some((SimTime(3), 999)));
        assert_eq!(q.pop(), Some((SimTime(1_000_050), 50)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popped times are a non-decreasing sequence, and every pushed
        /// element comes back exactly once.
        #[test]
        fn total_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime(t), i);
            }
            let mut last = SimTime(0);
            let mut seen = vec![false; times.len()];
            while let Some((t, idx)) = q.pop() {
                prop_assert!(t >= last);
                prop_assert_eq!(t, SimTime(times[idx]));
                prop_assert!(!seen[idx]);
                seen[idx] = true;
                last = t;
            }
            prop_assert!(seen.into_iter().all(|s| s));
        }

        /// Differential: the calendar queue pops in exactly the same order
        /// as the legacy BinaryHeap on interleaved push/pop streams mixing
        /// clustered, spread, and far-future times.
        #[test]
        fn calendar_matches_heap(
            ops in proptest::collection::vec(
                (0u64..5_000, 0u8..4, any::<bool>()), 1..400)
        ) {
            let mut cal = EventQueue::new();
            let mut heap = EventQueue::heap();
            for (i, &(t, scale, pop)) in ops.iter().enumerate() {
                // Scale stretches times across regimes: same-instant storms,
                // microsecond clusters, and far-future outliers.
                let t = match scale {
                    0 => t / 100,
                    1 => t,
                    2 => t * 1_000_003,
                    _ => t.saturating_mul(u64::MAX / 5_000),
                };
                cal.push(SimTime(t), i);
                heap.push(SimTime(t), i);
                if pop {
                    prop_assert_eq!(cal.pop(), heap.pop());
                }
            }
            loop {
                let (a, b) = (cal.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if b.is_none() {
                    break;
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
        }
    }
}
