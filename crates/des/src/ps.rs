//! Processor-sharing resource.
//!
//! Models a server of capacity `C` work-units/second shared equally among all
//! in-flight jobs — the standard fluid approximation for a disk, an SSD
//! channel, or a metadata server handling many concurrent requests. Used by
//! the storage devices, the Lustre OSS pool and MDS, and CPU-ish servers.
//!
//! Ownership pattern: the resource is passive. After any mutating call
//! (`add`, `cancel`, `set_capacity`, `poll`), the owner re-reads
//! `next_completion()` + `gen()` and schedules a wake event; stale wakes are
//! dropped by comparing generations.

use crate::sim::Gen;
use crate::time::{SimTime, NANOS_PER_SEC};
use std::collections::BTreeMap;

/// Handle to a job inside a [`PsResource`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey(pub u64);

struct Job<T> {
    remaining: f64,
    tag: T,
}

pub struct PsResource<T> {
    capacity: f64,
    jobs: BTreeMap<u64, Job<T>>,
    next_key: u64,
    last: SimTime,
    gen: Gen,
    completed: Vec<(JobKey, T)>,
    /// Total work completed since construction (for utilization accounting).
    pub work_done: f64,
}

impl<T> PsResource<T> {
    pub fn new(capacity: f64) -> Self {
        assert!(capacity >= 0.0 && capacity.is_finite());
        PsResource {
            capacity,
            jobs: BTreeMap::new(),
            next_key: 0,
            last: SimTime::ZERO,
            gen: Gen::default(),
            completed: Vec::new(),
            work_done: 0.0,
        }
    }

    pub fn gen(&self) -> Gen {
        self.gen
    }

    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Number of in-flight jobs.
    pub fn load(&self) -> usize {
        self.jobs.len()
    }

    /// Outstanding (unfinished) work across all jobs.
    pub fn backlog(&self) -> f64 {
        // lint:allow(float-order): DetMap::values() iterates in insertion order (R1), so the accumulation order is deterministic
        self.jobs.values().map(|j| j.remaining).sum()
    }

    /// Move any numerically finished jobs (remaining ~ 0 after float
    /// subtraction) to the completed list. Without this sweep a job that hits
    /// exactly 0.0 in the partial-drain branch would never be harvested and
    /// `next_completion` would return the same instant forever.
    fn harvest_zero(&mut self) {
        let done: Vec<u64> = self
            .jobs
            .iter()
            .filter(|(_, j)| j.remaining <= 1e-9)
            .map(|(&k, _)| k)
            .collect();
        for k in done {
            let j = self.jobs.remove(&k).expect("job vanished");
            self.completed.push((JobKey(k), j.tag));
        }
    }

    /// Advance the fluid state to `now`, moving finished jobs to the
    /// completed list. Completions within the interval are processed exactly,
    /// in shortest-remaining order.
    fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last, "PsResource clock went backwards");
        self.harvest_zero();
        let mut cur = self.last;
        while cur < now && !self.jobs.is_empty() && self.capacity > 0.0 {
            let n = self.jobs.len() as f64;
            let per_job_rate = self.capacity / n;
            // lint:allow(float-order): f64::min is commutative/associative, so the fold order cannot matter
            let min_rem = self
                .jobs
                .values()
                .map(|j| j.remaining)
                .fold(f64::INFINITY, f64::min);
            let dt_to_first = min_rem / per_job_rate; // seconds
            let avail = now.since(cur).as_secs_f64();
            if dt_to_first <= avail {
                // Drain min_rem from every job; harvest the finished ones.
                let drained = min_rem;
                cur = add_secs(cur, dt_to_first).min(now);
                let keys: Vec<u64> = self.jobs.keys().copied().collect();
                for k in keys {
                    let done = {
                        let j = self.jobs.get_mut(&k).unwrap();
                        j.remaining -= drained;
                        j.remaining <= drained * 1e-9 + 1e-6
                    };
                    if done {
                        let j = self.jobs.remove(&k).unwrap();
                        self.work_done += drained + j.remaining.max(0.0);
                        self.completed.push((JobKey(k), j.tag));
                    } else {
                        self.work_done += drained;
                    }
                }
            } else {
                // No completion before `now`: drain partially and stop.
                let drained = per_job_rate * avail;
                for j in self.jobs.values_mut() {
                    j.remaining -= drained;
                    self.work_done += drained;
                }
                cur = now;
            }
        }
        self.last = now;
        self.harvest_zero();
    }

    /// Submit `work` units. Zero-work jobs complete immediately.
    pub fn add(&mut self, now: SimTime, work: f64, tag: T) -> JobKey {
        assert!(work >= 0.0 && work.is_finite());
        self.advance(now);
        self.gen.bump();
        let key = JobKey(self.next_key);
        self.next_key += 1;
        if work == 0.0 {
            self.completed.push((key, tag));
        } else {
            self.jobs.insert(
                key.0,
                Job {
                    remaining: work,
                    tag,
                },
            );
        }
        key
    }

    /// Remove a job before completion; returns its tag if it was in flight.
    pub fn cancel(&mut self, now: SimTime, key: JobKey) -> Option<T> {
        self.advance(now);
        let j = self.jobs.remove(&key.0)?;
        self.gen.bump();
        Some(j.tag)
    }

    /// Change the shared capacity (e.g. SSD entering garbage collection).
    pub fn set_capacity(&mut self, now: SimTime, capacity: f64) {
        assert!(capacity >= 0.0 && capacity.is_finite());
        self.advance(now);
        if (capacity - self.capacity).abs() > f64::EPSILON {
            self.capacity = capacity;
            self.gen.bump();
        }
    }

    /// Advance to `now` and drain the completions that are due.
    pub fn poll(&mut self, now: SimTime) -> Vec<(JobKey, T)> {
        self.advance(now);
        if !self.completed.is_empty() {
            self.gen.bump();
        }
        std::mem::take(&mut self.completed)
    }

    /// Instant at which [`PsResource::poll`] will next return something:
    /// the already-due completions' harvest time when any are pending,
    /// otherwise the next in-flight completion. `None` when idle or stalled.
    pub fn next_completion(&self) -> Option<SimTime> {
        if !self.completed.is_empty() {
            return Some(self.last);
        }
        if self.jobs.is_empty() || self.capacity <= 0.0 {
            return None;
        }
        let n = self.jobs.len() as f64;
        // lint:allow(float-order): f64::min is commutative/associative, so the fold order cannot matter
        let min_rem = self
            .jobs
            .values()
            .map(|j| j.remaining)
            .fold(f64::INFINITY, f64::min);
        Some(add_secs(self.last, min_rem * n / self.capacity))
    }
}

fn add_secs(t: SimTime, secs: f64) -> SimTime {
    let ns = secs * NANOS_PER_SEC as f64;
    if !ns.is_finite() || ns >= (u64::MAX - t.as_nanos()) as f64 {
        SimTime::FAR_FUTURE
    } else {
        SimTime::from_nanos(t.as_nanos() + ns.ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_until_empty(ps: &mut PsResource<u32>) -> Vec<(SimTime, u32)> {
        let mut out = Vec::new();
        while let Some(t) = ps.next_completion() {
            for (_, tag) in ps.poll(t) {
                out.push((t, tag));
            }
        }
        out
    }

    #[test]
    fn single_job_takes_work_over_capacity() {
        let mut ps = PsResource::new(100.0);
        ps.add(SimTime::ZERO, 50.0, 1u32);
        let done = drain_until_empty(&mut ps);
        assert_eq!(done.len(), 1);
        assert!((done[0].0.as_secs_f64() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn two_equal_jobs_share_capacity() {
        let mut ps = PsResource::new(100.0);
        ps.add(SimTime::ZERO, 50.0, 1u32);
        ps.add(SimTime::ZERO, 50.0, 2u32);
        let done = drain_until_empty(&mut ps);
        // Each gets 50 units at 50/s -> both complete at t=1.0.
        assert_eq!(done.len(), 2);
        for (t, _) in &done {
            assert!((t.as_secs_f64() - 1.0).abs() < 1e-6, "got {t}");
        }
    }

    #[test]
    fn short_job_finishes_first_then_rate_rises() {
        let mut ps = PsResource::new(100.0);
        ps.add(SimTime::ZERO, 10.0, 1u32); // done at t=0.2 (rate 50 while shared)
        ps.add(SimTime::ZERO, 100.0, 2u32); // 10 done by 0.2, then 90 at 100/s -> t=1.1
        let done = drain_until_empty(&mut ps);
        assert_eq!(done[0].1, 1);
        assert!((done[0].0.as_secs_f64() - 0.2).abs() < 1e-6);
        assert_eq!(done[1].1, 2);
        assert!((done[1].0.as_secs_f64() - 1.1).abs() < 1e-6);
    }

    #[test]
    fn late_arrival_slows_existing_job() {
        let mut ps = PsResource::new(100.0);
        ps.add(SimTime::ZERO, 100.0, 1u32);
        // At t=0.5 the first job has 50 left; the newcomer halves its rate.
        ps.add(SimTime::from_secs_f64(0.5), 50.0, 2u32);
        let done = drain_until_empty(&mut ps);
        // Both have 50 remaining at t=0.5 sharing 100 -> done at t=1.5.
        assert_eq!(done.len(), 2);
        for (t, _) in &done {
            assert!((t.as_secs_f64() - 1.5).abs() < 1e-6, "got {t}");
        }
    }

    #[test]
    fn capacity_change_mid_flight() {
        let mut ps = PsResource::new(100.0);
        ps.add(SimTime::ZERO, 100.0, 1u32);
        // Half done at t=0.5, then capacity drops 4x: 50 left at 25/s -> +2.0s.
        ps.set_capacity(SimTime::from_secs_f64(0.5), 25.0);
        let done = drain_until_empty(&mut ps);
        assert!((done[0].0.as_secs_f64() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn zero_capacity_stalls() {
        let mut ps = PsResource::new(0.0);
        ps.add(SimTime::ZERO, 10.0, 1u32);
        assert_eq!(ps.next_completion(), None);
        ps.set_capacity(SimTime::from_secs_f64(1.0), 10.0);
        let done = drain_until_empty(&mut ps);
        assert!((done[0].0.as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_work_completes_immediately() {
        let mut ps = PsResource::new(10.0);
        ps.add(SimTime::ZERO, 0.0, 7u32);
        let got = ps.poll(SimTime::ZERO);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, 7);
    }

    #[test]
    fn cancel_removes_job_and_speeds_up_other() {
        let mut ps = PsResource::new(100.0);
        let a = ps.add(SimTime::ZERO, 100.0, 1u32);
        ps.add(SimTime::ZERO, 100.0, 2u32);
        // Cancel job 1 at t=0.5 (each has 75 left); job 2 then runs at 100/s.
        assert_eq!(ps.cancel(SimTime::from_secs_f64(0.5), a), Some(1));
        let done = drain_until_empty(&mut ps);
        assert_eq!(done.len(), 1);
        assert!((done[0].0.as_secs_f64() - 1.25).abs() < 1e-6);
    }

    #[test]
    fn gen_bumps_on_mutation() {
        let mut ps = PsResource::new(1.0);
        let g0 = ps.gen();
        ps.add(SimTime::ZERO, 1.0, 0u32);
        assert_ne!(ps.gen(), g0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Work conservation: with constant capacity and no idle periods the
        /// total completion time of a batch equals total_work / capacity.
        #[test]
        fn batch_drains_in_total_work_time(
            works in proptest::collection::vec(1.0f64..100.0, 1..20),
            cap in 1.0f64..50.0,
        ) {
            let mut ps = PsResource::new(cap);
            let total: f64 = works.iter().sum();
            for (i, &w) in works.iter().enumerate() {
                ps.add(SimTime::ZERO, w, i as u32);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0;
            while let Some(t) = ps.next_completion() {
                let done = ps.poll(t);
                count += done.len();
                last = t;
            }
            prop_assert_eq!(count, works.len());
            let expect = total / cap;
            prop_assert!((last.as_secs_f64() - expect).abs() < expect * 1e-6 + 1e-6,
                "last={} expect={}", last.as_secs_f64(), expect);
        }

        /// Jobs submitted at the same instant finish in non-decreasing order
        /// of their work (processor sharing preserves size order).
        #[test]
        fn size_order_for_simultaneous_jobs(
            works in proptest::collection::vec(1.0f64..100.0, 2..20),
        ) {
            let mut ps = PsResource::new(10.0);
            for (i, &w) in works.iter().enumerate() {
                ps.add(SimTime::ZERO, w, i as u32);
            }
            let mut finished: Vec<u32> = Vec::new();
            while let Some(t) = ps.next_completion() {
                finished.extend(ps.poll(t).into_iter().map(|(_, tag)| tag));
            }
            prop_assert_eq!(finished.len(), works.len());
            for pair in finished.windows(2) {
                let (a, b) = (works[pair[0] as usize], works[pair[1] as usize]);
                prop_assert!(a <= b + 1e-6, "finished {a} after {b}");
            }
        }
    }
}
