//! The [`Bytes`] newtype for data volumes crossing crate boundaries.
//!
//! [`crate::time`] keeps simulated instants and spans in integer-nanosecond
//! newtypes; this module does the same for data volumes. Byte counts stay
//! `f64` internally (bandwidth math divides and scales them constantly), but
//! a bare `bytes: f64` parameter on a public function is indistinguishable
//! from a rate, a fraction, or a duration-in-seconds at the callsite. The
//! `time-units` lint (R6, DESIGN.md §4.15) flags such parameters in
//! sim-visible crates; [`Bytes`] is the sanctioned carrier.
//!
//! The newtype is deliberately thin: construct with `Bytes(x)`, unwrap with
//! [`Bytes::get`] at the point arithmetic starts. It exists to type function
//! boundaries, not to re-derive a dimensional-analysis library.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A data volume in bytes (fractional bytes arise from compression ratios
/// and efficiency factors; devices round where physically meaningful).
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Bytes(pub f64);

impl Bytes {
    pub const ZERO: Bytes = Bytes(0.0);

    /// The raw count — the greppable escape hatch, mirroring
    /// [`crate::time::SimTime::as_nanos`].
    pub fn get(self) -> f64 {
        self.0
    }

    pub fn from_gb(gb: f64) -> Self {
        Bytes(gb * 1e9)
    }

    pub fn is_positive(self) -> bool {
        self.0 > 0.0
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

/// Scaling by a dimensionless factor (compression ratio, cached fraction).
impl Mul<f64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: f64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_arithmetic() {
        let a = Bytes(1024.0);
        let b = Bytes::from_gb(1.0);
        assert_eq!(b.get(), 1e9);
        assert_eq!((a + a).get(), 2048.0);
        assert_eq!((b - a).get(), 1e9 - 1024.0);
        let mut c = Bytes::ZERO;
        c += a;
        assert_eq!(c, a);
        assert!(a.is_positive());
        assert!(!Bytes::ZERO.is_positive());
    }
}
