//! Simulated time.
//!
//! All simulation clocks in `memres` are nanosecond-resolution integers so
//! that event ordering is exact and runs are bit-for-bit reproducible. Floats
//! appear only at the edges (rates, durations derived from bandwidth math)
//! and are rounded once, on conversion into [`SimDuration`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the simulation clock (nanoseconds since start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Duration since an earlier instant (saturating: never panics on clock
    /// skew introduced by float rounding).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The raw nanosecond count. This is the sanctioned escape hatch the
    /// `time-units` lint (R6, DESIGN.md §4.15) steers `.0` accesses toward:
    /// every place the integer leaves the newtype is greppable by name.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Wrap a raw nanosecond count (inverse of [`SimTime::as_nanos`]).
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time needed to move `work` units through a server of `rate` units/sec.
    pub fn for_work(work: f64, rate: f64) -> Self {
        if work <= 0.0 {
            return SimDuration::ZERO;
        }
        assert!(rate > 0.0, "rate must be positive (got {rate})");
        SimDuration::from_secs_f64(work / rate)
    }

    pub fn mul_f64(self, k: f64) -> Self {
        assert!(k >= 0.0);
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// The raw nanosecond count (see [`SimTime::as_nanos`]).
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Wrap a raw nanosecond count (inverse of [`SimDuration::as_nanos`]).
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    assert!(
        secs >= 0.0 && secs.is_finite(),
        "durations must be finite and non-negative (got {secs})"
    );
    let ns = secs * NANOS_PER_SEC as f64;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.0, 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs_f64(2.0) + SimDuration::from_millis(500);
        assert!((t.as_secs_f64() - 2.5).abs() < 1e-9);
        assert_eq!(
            t.since(SimTime::from_secs_f64(2.0)),
            SimDuration::from_millis(500)
        );
        // saturating on reversed order
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn for_work_basic() {
        // 1 GB over 1 GB/s = 1 s
        let d = SimDuration::for_work(1e9, 1e9);
        assert_eq!(d, SimDuration::from_secs(1));
        assert_eq!(SimDuration::for_work(0.0, 1.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn for_work_rejects_zero_rate() {
        let _ = SimDuration::for_work(1.0, 0.0);
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimTime::FAR_FUTURE > SimTime::from_secs_f64(1e9));
    }
}
