//! The simulation drive loop.
//!
//! A simulation is a [`Model`] (all mutable world state) plus an event
//! calendar. The model's `handle` receives one event at a time together with
//! an [`Outbox`] through which it schedules follow-up events. Components that
//! must *cancel* previously scheduled events (fair-share recomputation in the
//! network, queue changes in storage devices) use the stale-event idiom
//! instead: they stamp events with a [`Gen`] generation counter and ignore
//! events whose generation no longer matches.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Engine self-observation snapshot handed to models that opt in via
/// [`Model::wants_engine_stats`]: processed-event count and calendar health
/// (DESIGN.md §4.16). Taken after the current event's outbox has been
/// drained onto the calendar, so `queue` reflects the post-event state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events processed so far (monotone).
    pub steps: u64,
    /// Events buffered on the calendar.
    pub queue_len: usize,
    /// Calendar-queue health, when the calendar implementation is in use.
    pub queue: crate::queue::QueueStats,
}

/// World state driven by the event loop.
pub trait Model {
    type Event;

    /// Process one event at instant `now`, scheduling follow-ups via `out`.
    fn handle(&mut self, now: SimTime, event: Self::Event, out: &mut Outbox<Self::Event>);

    /// Opt in to per-event [`EngineStats`] observation. Checked (one bool
    /// test) after every `handle`; the default keeps the hot loop free of
    /// any self-observation cost.
    fn wants_engine_stats(&self) -> bool {
        false
    }

    /// Receive the engine snapshot taken after the event just handled. Only
    /// called when [`Model::wants_engine_stats`] returns true.
    fn observe_engine(&mut self, _stats: EngineStats) {}
}

/// Whether past-time scheduling is rejected by default: on in debug builds
/// (tests, `cargo run` without `--release`), off in release builds unless a
/// harness opts in (`repro fuzz` does — DESIGN.md §4.15).
fn strict_default() -> bool {
    cfg!(debug_assertions)
}

/// Collector for events scheduled while handling the current event.
pub struct Outbox<E> {
    now: SimTime,
    strict: bool,
    items: Vec<(SimTime, E)>,
}

impl<E> Outbox<E> {
    /// Create a standalone outbox (for drivers injecting events from outside
    /// the event loop).
    pub fn standalone(now: SimTime) -> Self {
        Outbox {
            now,
            strict: strict_default(),
            items: Vec::new(),
        }
    }

    /// Drain the collected events (standalone use).
    pub fn into_items(self) -> Vec<(SimTime, E)> {
        self.items
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Opt in or out of the past-time scheduling assertion (see
    /// [`Simulation::set_strict_schedule`]).
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// Schedule an event at an absolute instant (clamped to `now`: models may
    /// compute "due" times in the past by float rounding; those fire now).
    ///
    /// In strict mode (debug builds and fuzz runs) a genuinely past target is
    /// rejected outright — the dynamic counterpart of the `event-past` lint
    /// (R5, DESIGN.md §4.15). The PR 8 `lustre_shared_transfer` bug class
    /// (flows opened at future timestamps, events landed in the past) fails
    /// here immediately instead of corrupting a later export.
    pub fn at(&mut self, time: SimTime, event: E) {
        if self.strict {
            assert!(
                time >= self.now,
                "event scheduled in the past: target {time:?} precedes now {:?}",
                self.now
            );
        }
        self.items.push((time.max(self.now), event));
    }

    /// Schedule an event `delay` after the current instant.
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.items.push((self.now + delay, event));
    }

    /// Schedule an event for immediate processing (after already-queued
    /// events at the current instant).
    pub fn immediately(&mut self, event: E) {
        self.items.push((self.now, event));
    }
}

/// A discrete-event simulation: event calendar + model + clock.
pub struct Simulation<M: Model> {
    pub model: M,
    queue: EventQueue<M::Event>,
    now: SimTime,
    steps: u64,
    strict: bool,
    /// Hard cap on processed events; guards against runaway event storms.
    pub max_steps: u64,
}

impl<M: Model> Simulation<M> {
    pub fn new(model: M) -> Self {
        Simulation {
            model,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            steps: 0,
            strict: strict_default(),
            max_steps: u64::MAX,
        }
    }

    /// Toggle the past-time scheduling assertion for this simulation and the
    /// outboxes it hands to the model. Defaults to on in debug builds; the
    /// fuzz harness turns it on explicitly in release runs, and the one
    /// lenient-clamp regression test turns it off.
    pub fn set_strict_schedule(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// Swap in the legacy `BinaryHeap` event calendar (baseline mode for
    /// perf comparisons). Must be called before any event is scheduled.
    pub fn use_legacy_queue(&mut self) {
        assert!(
            self.queue.is_empty(),
            "queue implementation must be chosen before scheduling events"
        );
        self.queue = EventQueue::heap();
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn steps(&self) -> u64 {
        self.steps
    }

    pub fn schedule(&mut self, time: SimTime, event: M::Event) {
        if self.strict {
            assert!(
                time >= self.now,
                "event scheduled in the past: target {time:?} precedes now {:?}",
                self.now
            );
        }
        self.queue.push(time.max(self.now), event);
    }

    pub fn schedule_after(&mut self, delay: SimDuration, event: M::Event) {
        self.queue.push(self.now + delay, event);
    }

    /// Move every event collected in a standalone [`Outbox`] onto the
    /// calendar. The outbox already enforced the past-time discipline at
    /// insertion; the clamp here is belt-and-braces for outboxes built
    /// against an older clock.
    pub fn drain_outbox(&mut self, out: Outbox<M::Event>) {
        for (t, e) in out.into_items() {
            self.queue.push(t.max(self.now), e);
        }
    }

    /// Process a single event. Returns `false` when the calendar is empty.
    /// Panics if the `max_steps` budget is exhausted; harnesses that must
    /// survive runaway models use [`Simulation::try_step`] instead.
    pub fn step(&mut self) -> bool {
        match self.try_step() {
            Ok(progressed) => progressed,
            Err(e) => panic!(
                "simulation exceeded max_steps={} (event storm?)",
                e.max_steps
            ),
        }
    }

    /// Like [`Simulation::step`], but reports an exhausted event budget as an
    /// error instead of panicking, so a fuzz harness can turn a runaway event
    /// storm into an ordinary oracle failure (DESIGN.md §4.13).
    pub fn try_step(&mut self) -> Result<bool, BudgetExhausted> {
        let Some((time, event)) = self.queue.pop() else {
            return Ok(false);
        };
        debug_assert!(time >= self.now, "time went backwards");
        self.now = time;
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(BudgetExhausted {
                max_steps: self.max_steps,
            });
        }
        let mut out = Outbox {
            now: self.now,
            strict: self.strict,
            items: Vec::new(),
        };
        self.model.handle(self.now, event, &mut out);
        for (t, e) in out.items {
            // lint:allow(event-past): Outbox::at already asserted/clamped every item against the turn's now
            self.queue.push(t, e);
        }
        if self.model.wants_engine_stats() {
            let stats = EngineStats {
                steps: self.steps,
                queue_len: self.queue.len(),
                queue: self.queue.stats(),
            };
            self.model.observe_engine(stats);
        }
        Ok(true)
    }

    /// Run until the calendar drains. Returns the final clock value.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run until the calendar drains or the clock passes `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.now
    }
}

/// The event budget (`max_steps`) was exhausted before the calendar drained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExhausted {
    pub max_steps: u64,
}

/// Generation counter for the stale-event idiom.
///
/// A component that may need to "cancel" an in-flight event bumps its
/// generation on every state change; events carry the generation current at
/// scheduling time, and the handler drops events whose generation is stale.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gen(pub u64);

impl Gen {
    pub fn bump(&mut self) -> Gen {
        self.0 += 1;
        *self
    }

    pub fn is_current(self, other: Gen) -> bool {
        self == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that chains events: each `Tick(n)` schedules `Tick(n-1)` one
    /// second later until zero.
    struct Countdown {
        fired: Vec<(SimTime, u32)>,
    }

    enum Ev {
        Tick(u32),
    }

    impl Model for Countdown {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, event: Ev, out: &mut Outbox<Ev>) {
            let Ev::Tick(n) = event;
            self.fired.push((now, n));
            if n > 0 {
                out.after(SimDuration::from_secs(1), Ev::Tick(n - 1));
            }
        }
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut sim = Simulation::new(Countdown { fired: vec![] });
        sim.schedule(SimTime::from_secs_f64(2.0), Ev::Tick(3));
        let end = sim.run();
        assert_eq!(end, SimTime::from_secs_f64(5.0));
        assert_eq!(sim.model.fired.len(), 4);
        assert_eq!(sim.model.fired[0], (SimTime::from_secs_f64(2.0), 3));
        assert_eq!(sim.model.fired[3], (SimTime::from_secs_f64(5.0), 0));
        assert_eq!(sim.steps(), 4);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(Countdown { fired: vec![] });
        sim.schedule(SimTime::ZERO, Ev::Tick(100));
        sim.run_until(SimTime::from_secs_f64(3.5));
        // Ticks at t=0,1,2,3 fire; t=4 does not.
        assert_eq!(sim.model.fired.len(), 4);
    }

    /// A model that schedules one deliberately past-time event.
    struct PastScheduler {
        got: Vec<SimTime>,
    }
    impl Model for PastScheduler {
        type Event = bool;
        fn handle(&mut self, now: SimTime, first: bool, out: &mut Outbox<bool>) {
            self.got.push(now);
            if first {
                out.at(SimTime::ZERO, false);
            }
        }
    }

    #[test]
    fn outbox_clamps_past_times_when_lenient() {
        let mut sim = Simulation::new(PastScheduler { got: vec![] });
        sim.set_strict_schedule(false);
        sim.schedule(SimTime::from_secs_f64(5.0), true);
        sim.run();
        // "Past" target gets clamped to now.
        assert_eq!(sim.model.got, vec![SimTime::from_secs_f64(5.0); 2]);
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn strict_mode_rejects_past_outbox_times() {
        let mut sim = Simulation::new(PastScheduler { got: vec![] });
        sim.set_strict_schedule(true);
        sim.schedule(SimTime::from_secs_f64(5.0), true);
        sim.run();
    }

    #[test]
    #[should_panic(expected = "event scheduled in the past")]
    fn strict_mode_rejects_past_schedule() {
        let mut sim = Simulation::new(PastScheduler { got: vec![] });
        sim.set_strict_schedule(true);
        sim.schedule(SimTime::from_secs_f64(5.0), true);
        assert!(sim.step());
        // The clock now sits at t=5s; direct past-time scheduling trips too.
        sim.schedule(SimTime::from_secs_f64(1.0), false);
    }

    #[test]
    fn gen_staleness() {
        let mut g = Gen::default();
        let snap = g;
        assert!(snap.is_current(g));
        g.bump();
        assert!(!snap.is_current(g));
    }

    #[test]
    #[should_panic(expected = "max_steps")]
    fn step_cap_trips() {
        struct Loopy;
        impl Model for Loopy {
            type Event = ();
            fn handle(&mut self, _: SimTime, _: (), out: &mut Outbox<()>) {
                out.immediately(());
            }
        }
        let mut sim = Simulation::new(Loopy);
        sim.max_steps = 1000;
        sim.schedule(SimTime::ZERO, ());
        sim.run();
    }
}
