//! # Deterministic containers — `DetMap` and `DetSet`
//!
//! `std::collections::HashMap` iterates in hash order, and hash order is
//! salted per-instance (`RandomState`): two maps holding the same entries
//! visit them in different orders, within one process and across runs. Any
//! simulation-visible code that iterates a hash map therefore leaks host
//! entropy into event order, float-accumulation order, and ultimately the
//! exported metrics — breaking the engine's core promise that runs are
//! byte-identical across executor thread counts and seeds (DESIGN.md §4.10,
//! rule R1; enforced by `memres-lint`).
//!
//! ## Iteration-order contract
//!
//! `DetMap` (and `DetSet`, its keys-only wrapper) iterate in **insertion
//! order**, with one carve-out for removal: `remove` back-fills the vacated
//! slot with the entry from the *last* position (swap-remove, O(1)).
//! Re-inserting an existing key updates the value **in place** and keeps its
//! position. The visit order is thus a pure function of the sequence of
//! `insert`/`remove` calls — identical across runs, platforms, hash seeds,
//! and thread counts — and never a function of key hashes.
//!
//! Lookups stay O(1): an internal hash index maps keys to slot positions,
//! and that index is *never iterated* — iteration always walks the dense
//! slot vector.

use std::collections::HashMap; // lint:allow(hash-order): the index is only probed by key, never iterated; iteration walks `slots`
use std::hash::Hash;
use std::ops::Index;

/// Insertion-ordered map with O(1) hashed lookups and deterministic
/// iteration (see the module docs for the exact order contract).
#[derive(Clone)]
pub struct DetMap<K, V> {
    /// Dense entry storage in deterministic order; the only thing iterated.
    slots: Vec<(K, V)>,
    /// Key → position in `slots`. Probed by key only.
    index: HashMap<K, usize>, // lint:allow(hash-order): never iterated
}

impl<K, V> Default for DetMap<K, V> {
    fn default() -> Self {
        DetMap {
            slots: Vec::new(),
            index: HashMap::new(), // lint:allow(hash-order): never iterated
        }
    }
}

impl<K: Eq + Hash + Clone, V> DetMap<K, V> {
    pub fn new() -> Self {
        DetMap::default()
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Insert `value` under `key`. An existing key keeps its iteration
    /// position and the old value is returned; a new key appends at the end.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.index.get(&key) {
            Some(&i) => Some(std::mem::replace(&mut self.slots[i].1, value)),
            None => {
                self.index.insert(key.clone(), self.slots.len());
                self.slots.push((key, value));
                None
            }
        }
    }

    pub fn get(&self, key: &K) -> Option<&V> {
        self.index.get(key).map(|&i| &self.slots[i].1)
    }

    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.index.get(key) {
            Some(&i) => Some(&mut self.slots[i].1),
            None => None,
        }
    }

    pub fn contains_key(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Remove `key`, back-filling its slot with the last entry (swap-remove,
    /// O(1)). The resulting order is still a pure function of the operation
    /// sequence.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let i = self.index.remove(key)?;
        let (_, value) = self.slots.swap_remove(i);
        if let Some((moved, _)) = self.slots.get(i) {
            self.index.insert(moved.clone(), i);
        }
        Some(value)
    }

    /// Minimal entry API: `entry(k).or_insert(v)` / `.or_default()` /
    /// `.or_insert_with(f)`, mirroring the `std` idiom at the call sites the
    /// engine actually uses.
    pub fn entry(&mut self, key: K) -> Entry<'_, K, V> {
        Entry { map: self, key }
    }

    /// Entries in deterministic order (module docs).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots.iter().map(|(k, v)| (k, v))
    }

    /// Entries in deterministic order, values mutable.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> {
        self.slots.iter_mut().map(|(k, v)| (&*k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.slots.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().map(|(_, v)| v)
    }

    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots.iter_mut().map(|(_, v)| v)
    }

    pub fn clear(&mut self) {
        self.slots.clear();
        self.index.clear();
    }
}

/// A vacant-or-occupied handle from [`DetMap::entry`].
pub struct Entry<'a, K, V> {
    map: &'a mut DetMap<K, V>,
    key: K,
}

impl<'a, K: Eq + Hash + Clone, V> Entry<'a, K, V> {
    pub fn or_insert_with(self, default: impl FnOnce() -> V) -> &'a mut V {
        let i = match self.map.index.get(&self.key) {
            Some(&i) => i,
            None => {
                let i = self.map.slots.len();
                self.map.index.insert(self.key.clone(), i);
                self.map.slots.push((self.key, default()));
                i
            }
        };
        &mut self.map.slots[i].1
    }

    pub fn or_insert(self, default: V) -> &'a mut V {
        self.or_insert_with(|| default)
    }

    pub fn or_default(self) -> &'a mut V
    where
        V: Default,
    {
        self.or_insert_with(V::default)
    }
}

impl<K: Eq + Hash + Clone, V> Index<&K> for DetMap<K, V> {
    type Output = V;

    fn index(&self, key: &K) -> &V {
        self.get(key).expect("DetMap: no entry for key")
    }
}

impl<K: Eq + Hash + Clone, V> FromIterator<(K, V)> for DetMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = DetMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl<K, V> IntoIterator for DetMap<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;

    /// Consume the map, yielding entries in the deterministic order.
    fn into_iter(self) -> Self::IntoIter {
        self.slots.into_iter()
    }
}

/// Insertion-ordered set: [`DetMap`] keys with unit values; the same
/// iteration-order contract applies.
#[derive(Clone)]
pub struct DetSet<T> {
    map: DetMap<T, ()>,
}

impl<T> Default for DetSet<T> {
    fn default() -> Self {
        DetSet {
            map: DetMap::default(),
        }
    }
}

impl<T: Eq + Hash + Clone> DetSet<T> {
    pub fn new() -> Self {
        DetSet { map: DetMap::new() }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Insert `value`; `true` when it was not already present.
    pub fn insert(&mut self, value: T) -> bool {
        self.map.insert(value, ()).is_none()
    }

    pub fn contains(&self, value: &T) -> bool {
        self.map.contains_key(value)
    }

    /// Remove `value` (swap-remove order carve-out, as in [`DetMap`]);
    /// `true` when it was present.
    pub fn remove(&mut self, value: &T) -> bool {
        self.map.remove(value).is_some()
    }

    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.map.keys()
    }

    pub fn clear(&mut self) {
        self.map.clear()
    }
}

impl<T: Eq + Hash + Clone> FromIterator<T> for DetSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut s = DetSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_is_preserved() {
        let mut m = DetMap::new();
        for k in [30u32, 10, 20, 5] {
            m.insert(k, k * 2);
        }
        let keys: Vec<u32> = m.keys().copied().collect();
        assert_eq!(keys, vec![30, 10, 20, 5]);
        let vals: Vec<u32> = m.values().copied().collect();
        assert_eq!(vals, vec![60, 20, 40, 10]);
    }

    #[test]
    fn reinsert_keeps_position_and_returns_old() {
        let mut m = DetMap::new();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.insert("a", 10), Some(1));
        let entries: Vec<(&str, i32)> = m.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(entries, vec![("a", 10), ("b", 2)]);
    }

    #[test]
    fn remove_swaps_in_last_entry() {
        let mut m = DetMap::new();
        for k in 0..4 {
            m.insert(k, k);
        }
        assert_eq!(m.remove(&1), Some(1));
        let keys: Vec<i32> = m.keys().copied().collect();
        assert_eq!(keys, vec![0, 3, 2], "last entry back-fills the hole");
        // Lookups still work after the swap.
        assert_eq!(m.get(&3), Some(&3));
        assert_eq!(m.get(&2), Some(&2));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn entry_api_matches_std_idiom() {
        let mut m: DetMap<u32, f64> = DetMap::new();
        *m.entry(7).or_insert(0.0) += 1.5;
        *m.entry(7).or_insert(0.0) += 1.5;
        assert_eq!(m.get(&7), Some(&3.0));
        let mut m2: DetMap<u32, Vec<u32>> = DetMap::new();
        m2.entry(1).or_default().push(9);
        assert_eq!(m2.get(&1), Some(&vec![9]));
        *m.entry(8).or_insert_with(|| 40.0) += 2.0;
        assert_eq!(m.get(&8), Some(&42.0));
    }

    #[test]
    fn order_is_a_pure_function_of_operations() {
        // Two maps fed the same operation sequence iterate identically, even
        // though their internal hash indices are salted differently.
        let ops: Vec<(bool, u64)> = vec![
            (true, 3),
            (true, 11),
            (true, 7),
            (false, 11),
            (true, 19),
            (true, 11),
            (false, 3),
        ];
        let build = || {
            let mut m = DetMap::new();
            for &(ins, k) in &ops {
                if ins {
                    m.insert(k, k as f64);
                } else {
                    m.remove(&k);
                }
            }
            m.keys().copied().collect::<Vec<u64>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn index_and_from_iterator() {
        let m: DetMap<u8, &str> = [(2, "two"), (1, "one")].into_iter().collect();
        assert_eq!(m[&2], "two");
        let keys: Vec<u8> = m.keys().copied().collect();
        assert_eq!(keys, vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "no entry for key")]
    fn index_missing_panics() {
        let m: DetMap<u8, u8> = DetMap::new();
        let _ = m[&0];
    }

    #[test]
    fn set_basics() {
        let mut s = DetSet::new();
        assert!(s.insert("x"));
        assert!(!s.insert("x"), "duplicate insert reports absence");
        assert!(s.insert("y"));
        assert!(s.contains(&"x"));
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec!["x", "y"]);
        assert!(s.remove(&"x"));
        assert!(!s.remove(&"x"));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn into_iter_follows_slot_order() {
        let mut m = DetMap::new();
        m.insert(2, 'b');
        m.insert(1, 'a');
        let pairs: Vec<(i32, char)> = m.into_iter().collect();
        assert_eq!(pairs, vec![(2, 'b'), (1, 'a')]);
    }
}
