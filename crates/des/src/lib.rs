//! # memres-des — discrete-event simulation kernel
//!
//! The foundation of the `memres` stack: a deterministic event calendar and
//! drive loop ([`Simulation`]), a processor-sharing fluid resource
//! ([`PsResource`]) reused by every storage and server model, and the small
//! statistics toolkit the metrics layer is built on.
//!
//! Design notes:
//! * Time is integer nanoseconds ([`SimTime`]); equal-time events fire in
//!   insertion order, so runs are bit-for-bit reproducible.
//! * Components that must retract scheduled events use the *stale-event*
//!   idiom with [`Gen`] generation counters instead of calendar surgery.
//! * Simulation-visible keyed state lives in [`DetMap`]/[`DetSet`] —
//!   insertion-ordered containers whose iteration order is a pure function
//!   of the operation sequence, never of hash salts (DESIGN.md §4.10 R1).

pub mod bytes;
pub mod det;
pub mod ps;
pub mod queue;
pub mod sim;
pub mod stats;
pub mod time;

pub use bytes::Bytes;
pub use det::{DetMap, DetSet};
pub use ps::{JobKey, PsResource};
pub use queue::{EventQueue, QueueStats};
pub use sim::{EngineStats, Gen, Model, Outbox, Simulation};
pub use stats::{Cdf, LogHistogram, OnlineStats};
pub use time::{SimDuration, SimTime};

/// Bytes-per-unit helpers so model parameters read like the paper's units.
pub mod units {
    pub const KB: f64 = 1024.0;
    pub const MB: f64 = 1024.0 * 1024.0;
    pub const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    pub const TB: f64 = 1024.0 * GB;

    pub const KB_U: u64 = 1024;
    pub const MB_U: u64 = 1024 * 1024;
    pub const GB_U: u64 = 1024 * 1024 * 1024;
    pub const TB_U: u64 = 1024 * GB_U;

    /// Pretty-print a byte count the way the paper labels its x-axes.
    pub fn human_bytes(b: f64) -> String {
        if b >= TB {
            format!("{:.1} TB", b / TB)
        } else if b >= GB {
            format!("{:.0} GB", b / GB)
        } else if b >= MB {
            format!("{:.0} MB", b / MB)
        } else if b >= KB {
            format!("{:.0} KB", b / KB)
        } else {
            format!("{b:.0} B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::units::*;

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512.0), "512 B");
        assert_eq!(human_bytes(2.0 * KB), "2 KB");
        assert_eq!(human_bytes(128.0 * MB), "128 MB");
        assert_eq!(human_bytes(47.0 * GB), "47 GB");
        assert_eq!(human_bytes(1.5 * TB), "1.5 TB");
    }
}
