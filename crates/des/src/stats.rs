//! Small statistics toolkit used by the metrics layer and the figure harness:
//! streaming moments, percentiles, and empirical CDFs.

/// Streaming count/mean/variance/min/max (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

/// Linear sub-buckets per power-of-two octave (2^[`SUB_SHIFT`]).
const SUBS: usize = 16;
const SUB_SHIFT: u32 = 4;
/// Smallest / largest octave exponents with their own buckets; values
/// outside collapse into the underflow (index 0) / top bucket. 2^-31 s is
/// sub-nanosecond and 2^39 ≈ 5.5e11, so every duration, byte count and
/// queue depth the engine produces lands in a real bucket.
const MIN_EXP: i32 = -31;
const MAX_EXP: i32 = 39;
const OCTAVES: usize = (MAX_EXP - MIN_EXP + 1) as usize;
const NBUCKETS: usize = 1 + OCTAVES * SUBS;

/// Exact power of two as f64, built from the IEEE-754 exponent field so the
/// bucket edges are bit-exact on every platform.
fn pow2(e: i32) -> f64 {
    f64::from_bits((((e + 1023) as u64) & 0x7ff) << 52)
}

/// The workspace's one shared quantile structure (DESIGN.md §4.16): an
/// HDR-style log-bucketed histogram — 16 linear sub-buckets per power of
/// two, so any reported quantile is within 1/32 relative error of the exact
/// sample quantile. Bucketing is pure bit manipulation on the IEEE-754
/// representation (no `log2`, no sorting), which keeps it deterministic and
/// O(1) per sample. Tenancy SLO rollups, the speculation median, and the
/// metrics plane all accumulate into this type; the former per-call-site
/// sort-and-index percentile implementations are gone.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; NBUCKETS],
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index for `v`: 0 for non-positive / non-finite / sub-2^-31
    /// values, otherwise `1 + octave * 16 + sub` with both fields read
    /// straight off the float's bits.
    fn bucket_of(v: f64) -> usize {
        if !v.is_finite() || v <= 0.0 {
            return 0;
        }
        let bits = v.to_bits();
        let raw_exp = ((bits >> 52) & 0x7ff) as i32;
        if raw_exp == 0 {
            return 0; // subnormal: far below MIN_EXP
        }
        let exp = raw_exp - 1023;
        if exp < MIN_EXP {
            return 0;
        }
        if exp > MAX_EXP {
            return NBUCKETS - 1;
        }
        let sub = ((bits >> (52 - SUB_SHIFT)) & (SUBS as u64 - 1)) as usize;
        1 + (exp - MIN_EXP) as usize * SUBS + sub
    }

    /// Midpoint of bucket `idx` — the value quantiles report.
    fn representative(idx: usize) -> f64 {
        if idx == 0 {
            return 0.0;
        }
        let e = MIN_EXP + ((idx - 1) / SUBS) as i32;
        let s = (idx - 1) % SUBS;
        let base = pow2(e);
        let lower = base * (1.0 + s as f64 / SUBS as f64);
        let upper = base * (1.0 + (s + 1) as f64 / SUBS as f64);
        (lower + upper) / 2.0
    }

    pub fn record(&mut self, v: f64) {
        let idx = Self::bucket_of(v);
        self.counts[idx] += 1;
        self.total += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Nearest-rank quantile, `q` in [0, 1]: the midpoint of the bucket
    /// holding the ⌈q·n⌉-th smallest sample (within 1/32 relative error of
    /// the exact order statistic). 0.0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::representative(idx);
            }
        }
        unreachable!("total counted above")
    }

    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Build a histogram from a slice in one call (the shape the SLO rollup
    /// and the speculation baseline use).
    pub fn from_values(values: &[f64]) -> Self {
        let mut h = LogHistogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    /// Non-empty buckets as `(upper_edge, count)` pairs, ascending — the
    /// dashboard's histogram rendering and the diff report read these.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| {
                let upper = if idx == 0 {
                    0.0
                } else {
                    let e = MIN_EXP + ((idx - 1) / SUBS) as i32;
                    let s = (idx - 1) % SUBS;
                    pow2(e) * (1.0 + (s + 1) as f64 / SUBS as f64)
                };
                (upper, c)
            })
            .collect()
    }
}

/// Empirical CDF: sorted (value, cumulative fraction) points suitable for
/// printing figure series like the paper's Fig 12.
#[derive(Clone, Debug)]
pub struct Cdf {
    points: Vec<(f64, f64)>,
}

impl Cdf {
    pub fn from_values(values: &[f64]) -> Self {
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
        let n = v.len() as f64;
        let points = v
            .into_iter()
            .enumerate()
            .map(|(i, x)| (x, (i + 1) as f64 / n))
            .collect();
        Cdf { points }
    }

    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Fraction of samples <= x.
    pub fn fraction_at(&self, x: f64) -> f64 {
        match self
            .points
            .binary_search_by(|p| p.0.partial_cmp(&x).unwrap())
        {
            Ok(mut i) => {
                // step to the last equal value
                while i + 1 < self.points.len() && self.points[i + 1].0 <= x {
                    i += 1;
                }
                self.points[i].1
            }
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Smallest value v with CDF(v) >= q.
    pub fn value_at(&self, q: f64) -> f64 {
        for &(x, f) in &self.points {
            if f >= q {
                return x;
            }
        }
        self.points.last().map(|p| p.0).unwrap_or(0.0)
    }

    /// Downsample to at most `n` points for compact printing.
    pub fn sampled(&self, n: usize) -> Vec<(f64, f64)> {
        if self.points.len() <= n || n < 2 {
            return self.points.clone();
        }
        let step = (self.points.len() - 1) as f64 / (n - 1) as f64;
        (0..n)
            .map(|i| self.points[(i as f64 * step).round() as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn log_histogram_quantiles_bound_error() {
        let h = LogHistogram::from_values(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 2.5).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 4.0);
        // Nearest-rank: p50 is the 2nd smallest (2.0), p100 the largest.
        // The representative is the bucket midpoint, so the worst case is
        // exactly half a bucket width = 1/32 relative — bound is inclusive.
        assert!((h.median() - 2.0).abs() / 2.0 <= 1.0 / 32.0);
        assert!((h.quantile(1.0) - 4.0).abs() / 4.0 <= 1.0 / 32.0);
        assert!((h.quantile(0.0) - 1.0).abs() / 1.0 <= 1.0 / 32.0);
    }

    #[test]
    fn log_histogram_handles_degenerate_inputs() {
        let mut h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        // Non-positive and non-finite samples land in the underflow bucket.
        assert_eq!(h.count(), 3);
        assert_eq!(h.median(), 0.0);
        // A huge value clamps to the top bucket instead of panicking.
        h.record(1e300);
        assert!(h.quantile(1.0) > 1e11);
    }

    #[test]
    fn log_histogram_buckets_are_exact_bit_splits() {
        // 5.0 = 2^2 * 1.25: octave 2, sub-bucket 4 → bucket [5.0, 5.25).
        let h = LogHistogram::from_values(&[5.0]);
        let q = h.median();
        assert!(
            (5.0..5.25).contains(&q),
            "representative {q} outside bucket"
        );
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.len(), 1);
        assert!((buckets[0].0 - 5.25).abs() < 1e-12);
        assert_eq!(buckets[0].1, 1);
    }

    #[test]
    fn cdf_fraction_and_quantile() {
        let c = Cdf::from_values(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(c.fraction_at(5.0), 0.0);
        assert_eq!(c.fraction_at(20.0), 0.5);
        assert_eq!(c.fraction_at(100.0), 1.0);
        assert_eq!(c.value_at(0.25), 10.0);
        assert_eq!(c.value_at(1.0), 40.0);
    }

    #[test]
    fn cdf_handles_duplicates() {
        let c = Cdf::from_values(&[1.0, 1.0, 1.0, 2.0]);
        assert_eq!(c.fraction_at(1.0), 0.75);
    }

    #[test]
    fn cdf_sampled_keeps_ends() {
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let c = Cdf::from_values(&vals);
        let s = c.sampled(11);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].0, 0.0);
        assert_eq!(s[10].0, 999.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn online_mean_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let mut s = OnlineStats::new();
            for &x in &xs { s.push(x); }
            let naive = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!((s.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
        }

        #[test]
        fn log_histogram_quantile_tracks_exact_order_statistic(
            xs in proptest::collection::vec(1e-6f64..1e6, 1..200),
            q in 0.0f64..1.0,
        ) {
            let h = LogHistogram::from_values(&xs);
            // Exact nearest-rank order statistic on a sorted copy.
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let approx = h.quantile(q);
            // Same bucket as the exact order statistic ⇒ within 1/16 of it
            // (the bucket's full width; midpoint error is half that).
            prop_assert!((approx - exact).abs() <= exact / 16.0 + 1e-12,
                "quantile {approx} vs exact {exact}");
        }

        #[test]
        fn cdf_is_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
            let c = Cdf::from_values(&xs);
            for w in c.points().windows(2) {
                prop_assert!(w[0].0 <= w[1].0);
                prop_assert!(w[0].1 <= w[1].1);
            }
            prop_assert!((c.points().last().unwrap().1 - 1.0).abs() < 1e-12);
        }
    }
}
