//! Small statistics toolkit used by the metrics layer and the figure harness:
//! streaming moments, percentiles, and empirical CDFs.

/// Streaming count/mean/variance/min/max (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

/// Percentile by linear interpolation on a sorted copy. `q` in [0, 1].
pub fn percentile(values: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if values.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

pub fn median(values: &[f64]) -> f64 {
    percentile(values, 0.5)
}

/// Empirical CDF: sorted (value, cumulative fraction) points suitable for
/// printing figure series like the paper's Fig 12.
#[derive(Clone, Debug)]
pub struct Cdf {
    points: Vec<(f64, f64)>,
}

impl Cdf {
    pub fn from_values(values: &[f64]) -> Self {
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CDF input"));
        let n = v.len() as f64;
        let points = v
            .into_iter()
            .enumerate()
            .map(|(i, x)| (x, (i + 1) as f64 / n))
            .collect();
        Cdf { points }
    }

    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Fraction of samples <= x.
    pub fn fraction_at(&self, x: f64) -> f64 {
        match self
            .points
            .binary_search_by(|p| p.0.partial_cmp(&x).unwrap())
        {
            Ok(mut i) => {
                // step to the last equal value
                while i + 1 < self.points.len() && self.points[i + 1].0 <= x {
                    i += 1;
                }
                self.points[i].1
            }
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Smallest value v with CDF(v) >= q.
    pub fn value_at(&self, q: f64) -> f64 {
        for &(x, f) in &self.points {
            if f >= q {
                return x;
            }
        }
        self.points.last().map(|p| p.0).unwrap_or(0.0)
    }

    /// Downsample to at most `n` points for compact printing.
    pub fn sampled(&self, n: usize) -> Vec<(f64, f64)> {
        if self.points.len() <= n || n < 2 {
            return self.points.clone();
        }
        let step = (self.points.len() - 1) as f64 / (n - 1) as f64;
        (0..n)
            .map(|i| self.points[(i as f64 * step).round() as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((median(&v) - 2.5).abs() < 1e-12);
        assert!((percentile(&v, 1.0 / 3.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_fraction_and_quantile() {
        let c = Cdf::from_values(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(c.fraction_at(5.0), 0.0);
        assert_eq!(c.fraction_at(20.0), 0.5);
        assert_eq!(c.fraction_at(100.0), 1.0);
        assert_eq!(c.value_at(0.25), 10.0);
        assert_eq!(c.value_at(1.0), 40.0);
    }

    #[test]
    fn cdf_handles_duplicates() {
        let c = Cdf::from_values(&[1.0, 1.0, 1.0, 2.0]);
        assert_eq!(c.fraction_at(1.0), 0.75);
    }

    #[test]
    fn cdf_sampled_keeps_ends() {
        let vals: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let c = Cdf::from_values(&vals);
        let s = c.sampled(11);
        assert_eq!(s.len(), 11);
        assert_eq!(s[0].0, 0.0);
        assert_eq!(s[10].0, 999.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn online_mean_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let mut s = OnlineStats::new();
            for &x in &xs { s.push(x); }
            let naive = xs.iter().sum::<f64>() / xs.len() as f64;
            prop_assert!((s.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
        }

        #[test]
        fn cdf_is_monotone(xs in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
            let c = Cdf::from_values(&xs);
            for w in c.points().windows(2) {
                prop_assert!(w[0].0 <= w[1].0);
                prop_assert!(w[0].1 <= w[1].1);
            }
            prop_assert!((c.points().last().unwrap().1 - 1.0).abs() < 1e-12);
        }
    }
}
