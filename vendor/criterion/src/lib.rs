//! Vendored, dependency-free subset of the `criterion` benchmark API.
//!
//! The build environment cannot reach a crates registry, so this workspace
//! vendors the surface its benches use: `Criterion`, `benchmark_group` with
//! `sample_size`, `bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are intentionally simple: each benchmark runs one warm-up
//! iteration plus `sample_size` timed iterations and reports min / mean /
//! max wall-clock per iteration on stdout.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        target_samples: samples,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let max = b.samples.iter().max().copied().unwrap_or_default();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{name:<40} [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _c: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }
}
