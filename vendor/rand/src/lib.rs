//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to a crates registry, so this
//! workspace vendors the exact surface memres uses: `SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges (exclusive and inclusive), and `Rng::gen::<f64>()`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction rand 0.8's `SmallRng` uses on 64-bit targets — so quality is
//! adequate for simulation workloads and sequences are deterministic per
//! seed on every platform.

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types `Rng::gen` can produce (rand's `Standard` distribution).
pub trait Standard {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges `Rng::gen_range` accepts (rand's `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — rand 0.8's 64-bit `SmallRng` algorithm.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(4..12);
            assert!((4..12).contains(&x));
            let y = r.gen_range(0..=5u32);
            assert!(y <= 5);
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g = r.gen_range(0.5..=2.0);
            assert!((0.5..=2.0).contains(&g));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn covers_full_inclusive_span() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[r.gen_range(0..=5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
