//! Vendored, dependency-free subset of the `proptest` API.
//!
//! The build environment cannot reach a crates registry, so this workspace
//! vendors the surface its property tests use: the `proptest!` macro with
//! optional `#![proptest_config(..)]`, numeric range strategies (exclusive
//! and inclusive), tuple strategies, `collection::vec`, `sample::Index`,
//! `any::<T>()`, and the `prop_assert*` macros.
//!
//! Differences from upstream: failing cases are not shrunk — the panic
//! message reports the case number and the RNG seed, which is derived
//! deterministically from the test name so failures reproduce exactly.

pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            lo + rng.next_f64() * (hi - lo)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Constant strategies: a plain value samples to itself (used by
    /// `Just`-style literals in compound strategies).
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// Length specification accepted by [`vec`].
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection whose length is only known at use time.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64()
        }
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod test_runner {
    /// Runner configuration. Only `cases` is consulted; the remaining fields
    /// exist so upstream-style struct-update syntax compiles.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
        pub max_local_rejects: u32,
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
                max_local_rejects: 65536,
                max_global_rejects: 1024,
            }
        }
    }

    /// A failed `prop_assert*` in one test case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64 — deterministic per test name, so failures reproduce.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    pub struct TestRunner {
        cases: u32,
        rng: TestRng,
        name: &'static str,
        case: u32,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            TestRunner {
                cases: config.cases,
                rng: TestRng::from_name(name),
                name,
                case: 0,
            }
        }

        pub fn cases(&self) -> u32 {
            self.cases
        }

        pub fn begin_case(&mut self, case: u32) {
            self.case = case;
        }

        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }

        pub fn fail(&self, err: TestCaseError) -> ! {
            panic!(
                "proptest: test `{}` failed at case {}/{}: {}",
                self.name,
                self.case + 1,
                self.cases,
                err
            )
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            for case in 0..runner.cases() {
                runner.begin_case(case);
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::sample(&($strat), runner.rng()),)+
                );
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = result {
                    runner.fail(e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Ranges, vec strategies, tuples and Index all stay in bounds.
        #[test]
        fn samples_in_bounds(
            x in 3u32..9,
            f in -2.0f64..2.0,
            v in crate::collection::vec(0usize..5, 1..10),
            (a, b) in (1u8..4, 10i64..20),
            ix in any::<crate::sample::Index>(),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert!((1..4).contains(&a));
            prop_assert!((10..20).contains(&b));
            prop_assert!(ix.index(7) < 7);
            prop_assert_eq!(x, x);
            prop_assert_ne!(f, f + 1.0);
        }
    }

    #[test]
    fn default_cases_is_256() {
        assert_eq!(ProptestConfig::default().cases, 256);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            #[allow(unused)]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 1000, "x was {}", x);
            }
        }
        inner();
    }
}
